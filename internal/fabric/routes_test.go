package fabric

import (
	"testing"

	"utlb/internal/units"
)

func TestRouteLifecycle(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	if n.CurrentRoute(1, 2) != 0 {
		t.Error("fresh pair should use route 0")
	}
	if n.RouteDead(1, 2) {
		t.Error("fresh route dead")
	}
	n.FailRoute(1, 2, 0)
	if !n.RouteDead(1, 2) {
		t.Error("failed route not dead")
	}
	if !n.Remap(1, 2) {
		t.Error("remap failed with a healthy alternate")
	}
	if n.CurrentRoute(1, 2) != 1 || n.RouteDead(1, 2) {
		t.Error("remap did not switch to route 1")
	}
	n.FailRoute(1, 2, 1)
	if n.Remap(1, 2) {
		t.Error("remap succeeded with all routes dead")
	}
	n.RepairRoute(1, 2, 0)
	if !n.Remap(1, 2) || n.CurrentRoute(1, 2) != 0 {
		t.Error("repair + remap did not restore route 0")
	}
	// Out-of-range routes are ignored.
	n.FailRoute(1, 2, 99)
	n.RepairRoute(1, 2, -1)
}

func TestRouteFailureIsDirectional(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	n.FailRoute(1, 2, 0)
	if n.RouteDead(2, 1) {
		t.Error("reverse direction affected")
	}
}

func TestTransmitDropsOnDeadRoute(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	delivered := 0
	n.Attach(2, func(*Packet, units.Time) { delivered++ })
	n.FailRoute(1, 2, 0)
	if _, ok := n.Transmit(&Packet{Src: 1, Dst: 2}, 0); ok {
		t.Error("packet crossed a dead route")
	}
	n.Remap(1, 2)
	if _, ok := n.Transmit(&Packet{Src: 1, Dst: 2}, 0); !ok || delivered != 1 {
		t.Error("packet lost after remap")
	}
	_, del, drop, _ := n.Stats()
	if del != 1 || drop != 1 {
		t.Errorf("stats = delivered %d dropped %d", del, drop)
	}
}

func TestEndpointRecoversAfterExternalRemap(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	clkA, clkB := units.NewClock(), units.NewClock()
	var got int
	NewEndpoint(2, n, clkB, units.FromMicros(50), func(units.NodeID, []byte, uint64, units.Time) { got++ })
	a := NewEndpoint(1, n, clkA, units.FromMicros(50), nil)

	n.FailRoute(1, 2, 0)
	if err := a.Send(2, []byte("x"), 0); err == nil {
		t.Fatal("send succeeded over dead route")
	}
	n.Remap(1, 2)
	if err := a.Send(2, []byte("x"), 0); err != nil {
		t.Fatalf("send after remap: %v", err)
	}
	if got != 1 {
		t.Errorf("delivered %d", got)
	}
}
