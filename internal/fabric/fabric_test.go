package fabric

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"utlb/internal/units"
)

func TestPacketSealIntact(t *testing.T) {
	p := &Packet{Payload: []byte("hello")}
	p.Seal()
	if !p.Intact() {
		t.Error("sealed packet not intact")
	}
	p.Payload[0] ^= 0xff
	if p.Intact() {
		t.Error("corrupted packet reported intact")
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindAck.String() != "ack" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestTransferTime(t *testing.T) {
	c := DefaultLinkCosts()
	// One 4 KB page at 160 MB/s is 25.6 µs of serialisation + 1 µs
	// latency + header time.
	got := c.TransferTime(4096).Micros()
	if got < 24 || got > 28 {
		t.Errorf("TransferTime(4096) = %.1fus", got)
	}
	if c.TransferTime(0) <= c.Latency {
		t.Error("header bytes should add to zero-payload time")
	}
}

func TestTransmitDelivers(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	var got *Packet
	var at units.Time
	n.Attach(2, func(p *Packet, arrival units.Time) { got, at = p, arrival })
	pkt := &Packet{Src: 1, Dst: 2, Payload: []byte("abc")}
	pkt.Seal()
	arrival, ok := n.Transmit(pkt, 1000)
	if !ok || got == nil {
		t.Fatal("packet not delivered")
	}
	if arrival != at {
		t.Errorf("handler arrival %v != returned %v", at, arrival)
	}
	if arrival <= 1000 {
		t.Error("no wire time charged")
	}
	if !bytes.Equal(got.Payload, []byte("abc")) || !got.Intact() {
		t.Error("payload mangled")
	}
	// Delivered packet must be a copy: mutating it must not affect
	// the sender's packet.
	got.Payload[0] = 'z'
	if pkt.Payload[0] != 'a' {
		t.Error("delivery aliases sender buffer")
	}
}

func TestTransmitUnknownDestination(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	if _, ok := n.Transmit(&Packet{Dst: 99}, 0); ok {
		t.Error("delivery to unattached node")
	}
}

func TestLinkSerialisation(t *testing.T) {
	// Two back-to-back packets from the same source must not overlap
	// on the outbound link: the second arrives later than it would
	// alone.
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	n.Attach(2, func(*Packet, units.Time) {})
	big := make([]byte, 4096)
	a1, _ := n.Transmit(&Packet{Src: 1, Dst: 2, Payload: big}, 0)
	a2, _ := n.Transmit(&Packet{Src: 1, Dst: 2, Payload: big}, 0)
	if a2 <= a1 {
		t.Errorf("second packet arrival %v not after first %v", a2, a1)
	}
}

func TestDropInjectionDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		n := NewNetwork(DefaultLinkCosts(), FaultPlan{DropRate: 0.5, Seed: 42})
		n.Attach(2, func(*Packet, units.Time) {})
		for i := 0; i < 100; i++ {
			n.Transmit(&Packet{Src: 1, Dst: 2, Payload: []byte{1}}, 0)
		}
		sent, delivered, dropped, _ := n.Stats()
		if sent != 100 || delivered+dropped != 100 {
			t.Fatalf("stats inconsistent: %d %d %d", sent, delivered, dropped)
		}
		return delivered, dropped
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Error("same seed produced different drop schedules")
	}
	if r1 == 0 || d1 == 0 {
		t.Errorf("expected both drops and deliveries at 50%%: %d/%d", d1, r1)
	}
}

func TestCorruptionCaughtByCRC(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{CorruptRate: 1.0, Seed: 7})
	var intact, broken int
	n.Attach(2, func(p *Packet, _ units.Time) {
		if p.Intact() {
			intact++
		} else {
			broken++
		}
	})
	pkt := &Packet{Src: 1, Dst: 2, Payload: []byte("payload")}
	pkt.Seal()
	n.Transmit(pkt, 0)
	if broken != 1 || intact != 0 {
		t.Errorf("corruption not observed: intact=%d broken=%d", intact, broken)
	}
}

func TestReliableDeliveryCleanLink(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	clkA, clkB := units.NewClock(), units.NewClock()
	var got []byte
	var gotTag uint64
	NewEndpoint(2, n, clkB, units.FromMicros(50), func(src units.NodeID, p []byte, tag uint64, _ units.Time) {
		if src != 1 {
			t.Errorf("src = %d", src)
		}
		got = append([]byte(nil), p...)
		gotTag = tag
	})
	a := NewEndpoint(1, n, clkA, units.FromMicros(50), nil)
	if err := a.Send(2, []byte("ping"), 77); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" || gotTag != 77 {
		t.Errorf("got %q tag %d", got, gotTag)
	}
	if a.Retransmits() != 0 {
		t.Errorf("clean link retransmits = %d", a.Retransmits())
	}
	if clkA.Now() == 0 {
		t.Error("sender clock did not advance")
	}
}

func TestReliableDeliveryLossyLink(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{DropRate: 0.4, Seed: 123})
	clkA, clkB := units.NewClock(), units.NewClock()
	var delivered [][]byte
	NewEndpoint(2, n, clkB, units.FromMicros(50), func(_ units.NodeID, p []byte, _ uint64, _ units.Time) {
		delivered = append(delivered, append([]byte(nil), p...))
	})
	a := NewEndpoint(1, n, clkA, units.FromMicros(50), nil)
	for i := 0; i < 50; i++ {
		if err := a.Send(2, []byte{byte(i)}, 0); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if len(delivered) != 50 {
		t.Fatalf("delivered %d payloads, want 50 (exactly once)", len(delivered))
	}
	for i, p := range delivered {
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, p[0])
		}
	}
	if a.Retransmits() == 0 {
		t.Error("40% loss produced no retransmits")
	}
}

func TestReliableDeliveryCorruptingLink(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{CorruptRate: 0.3, Seed: 9})
	clkA, clkB := units.NewClock(), units.NewClock()
	var count int
	NewEndpoint(2, n, clkB, units.FromMicros(50), func(_ units.NodeID, p []byte, _ uint64, _ units.Time) {
		count++
		if len(p) != 64 {
			t.Errorf("corrupted payload delivered: %d bytes", len(p))
		}
	})
	a := NewEndpoint(1, n, clkA, units.FromMicros(50), nil)
	payload := make([]byte, 64)
	for i := 0; i < 30; i++ {
		if err := a.Send(2, payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	if count != 30 {
		t.Errorf("delivered %d, want 30", count)
	}
}

func TestReliableLinkDead(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{DropRate: 1.0, Seed: 1})
	clkA, clkB := units.NewClock(), units.NewClock()
	NewEndpoint(2, n, clkB, units.FromMicros(50), nil)
	a := NewEndpoint(1, n, clkA, units.FromMicros(50), nil)
	err := a.Send(2, []byte("x"), 0)
	if !errors.Is(err, ErrLinkDead) {
		t.Errorf("err = %v, want ErrLinkDead", err)
	}
}

func TestReliableOversizePayload(t *testing.T) {
	n := NewNetwork(DefaultLinkCosts(), FaultPlan{})
	a := NewEndpoint(1, n, units.NewClock(), units.FromMicros(50), nil)
	if err := a.Send(2, make([]byte, MTU+1), 0); err == nil {
		t.Error("oversize payload accepted")
	}
}

// Property: under any drop/corruption rates below the lossy-link
// ceiling, reliable delivery preserves content, order, and exactly-once
// semantics.
func TestReliableDeliveryProperty(t *testing.T) {
	f := func(seed int64, dropRaw, corruptRaw uint8, payloads [][]byte) bool {
		// Keep combined loss low enough that exhausting the 16-attempt
		// retransmit budget is cryptographically unlikely; the
		// budget-exhaustion path has its own test.
		n := NewNetwork(DefaultLinkCosts(), FaultPlan{
			DropRate:    float64(dropRaw%30) / 100,    // 0-29%
			CorruptRate: float64(corruptRaw%20) / 100, // 0-19%
			Seed:        seed,
		})
		clkA, clkB := units.NewClock(), units.NewClock()
		var got [][]byte
		NewEndpoint(2, n, clkB, units.FromMicros(50), func(_ units.NodeID, p []byte, _ uint64, _ units.Time) {
			got = append(got, append([]byte(nil), p...))
		})
		a := NewEndpoint(1, n, clkA, units.FromMicros(50), nil)
		var sent [][]byte
		for _, p := range payloads {
			if len(p) > MTU {
				p = p[:MTU]
			}
			if err := a.Send(2, p, 0); err != nil {
				return false // bounded loss must never exhaust 16 retries... treat as failure
			}
			sent = append(sent, p)
		}
		if len(got) != len(sent) {
			return false
		}
		for i := range sent {
			if string(got[i]) != string(sent[i]) {
				return false
			}
		}
		return true
	}
	// Fixed generator seed: the default is time-seeded, and at the top
	// of the loss range (29% drop + 19% corruption) exhausting the
	// 16-attempt budget is a ~2e-4 per-packet event — rare but not
	// rare enough for an unseeded test that draws ~1000 packets.
	if err := quick.Check(f, &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(1998)),
	}); err != nil {
		t.Error(err)
	}
}
