package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"utlb/internal/units"
)

// Binary format: a magic header followed by fixed 32-byte little-endian
// records. The format is versioned so archived traces stay readable.
const (
	magic   = "UTLBTRC1"
	recSize = 32
)

// WriteBinary encodes t to w in the binary trace format.
func WriteBinary(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [recSize]byte
	for _, r := range t {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.Time))
		binary.LittleEndian.PutUint32(buf[8:], uint32(r.Node))
		binary.LittleEndian.PutUint32(buf[12:], uint32(r.PID))
		buf[16] = byte(r.Op)
		// bytes 17-23 reserved
		for i := 17; i < 24; i++ {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint32(buf[20:], uint32(r.Bytes))
		binary.LittleEndian.PutUint64(buf[24:], uint64(r.VA))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace from r.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	var out Trace
	var buf [recSize]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record %d: %w", len(out), err)
		}
		out = append(out, Record{
			Time:  units.Time(binary.LittleEndian.Uint64(buf[0:])),
			Node:  units.NodeID(binary.LittleEndian.Uint32(buf[8:])),
			PID:   units.ProcID(binary.LittleEndian.Uint32(buf[12:])),
			Op:    Op(buf[16]),
			Bytes: int32(binary.LittleEndian.Uint32(buf[20:])),
			VA:    units.VAddr(binary.LittleEndian.Uint64(buf[24:])),
		})
	}
}

// WriteText encodes t as one whitespace-separated record per line:
//
//	<time-ns> <node> <pid> <op> <va-hex> <bytes>
func WriteText(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		if _, err := fmt.Fprintf(bw, "%d %d %d %s %#x %d\n",
			r.Time, r.Node, r.PID, r.Op, uint64(r.VA), r.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text format; blank lines and #-comments are
// skipped.
func ReadText(r io.Reader) (Trace, error) {
	var out Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var (
			t, va       uint64
			node, pid   uint32
			opStr       string
			bytesParsed int32
		)
		if _, err := fmt.Sscanf(line, "%d %d %d %s %v %d",
			&t, &node, &pid, &opStr, &va, &bytesParsed); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		var op Op
		switch opStr {
		case "send":
			op = Send
		case "fetch":
			op = Fetch
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, opStr)
		}
		out = append(out, Record{
			Time:  units.Time(t),
			Node:  units.NodeID(node),
			PID:   units.ProcID(pid),
			Op:    op,
			VA:    units.VAddr(va),
			Bytes: bytesParsed,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
