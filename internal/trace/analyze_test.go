package trace

import (
	"strings"
	"testing"

	"utlb/internal/units"
)

func analyzeSample() Trace {
	mk := func(t int64, pid units.ProcID, op Op, page int, bytes int32) Record {
		return Record{Time: units.Time(t), PID: pid, Op: op,
			VA: units.VAddr(page) * units.PageSize, Bytes: bytes}
	}
	return Trace{
		mk(10, 1, Send, 0, 4096),
		mk(20, 1, Send, 1, 4096), // consecutive: run of 2
		mk(30, 1, Fetch, 5, 4096),
		mk(40, 2, Send, 0, 4096),
		mk(50, 1, Send, 0, 4096), // reuse of (1, page 0)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(analyzeSample())
	if s.Lookups != 5 || s.Footprint != 4 {
		t.Errorf("lookups=%d footprint=%d", s.Lookups, s.Footprint)
	}
	if s.Sends != 4 || s.Fetches != 1 {
		t.Errorf("sends=%d fetches=%d", s.Sends, s.Fetches)
	}
	if s.Bytes != 5*4096 {
		t.Errorf("bytes=%d", s.Bytes)
	}
	if s.Duration != 40 {
		t.Errorf("duration=%v", s.Duration)
	}
	if s.Processes != 2 || s.Nodes != 1 {
		t.Errorf("procs=%d nodes=%d", s.Processes, s.Nodes)
	}
	if s.ReuseFactor != 5.0/4.0 {
		t.Errorf("reuse=%v", s.ReuseFactor)
	}
	if len(s.PerProcess) != 2 || s.PerProcess[0].PID != 1 ||
		s.PerProcess[0].Lookups != 4 || s.PerProcess[0].Footprint != 3 {
		t.Errorf("per-process = %+v", s.PerProcess)
	}
	out := s.String()
	for _, want := range []string{"lookups", "footprint", "pid 1", "pid 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Lookups != 0 || s.ReuseFactor != 0 || s.MeanRunLength != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestMeanRunLength(t *testing.T) {
	// pid 1: pages 0,1,2 (run 3) then 9 (run 1) -> mean 2.0
	tr := Trace{
		{PID: 1, VA: 0 * units.PageSize, Bytes: 1},
		{PID: 1, VA: 1 * units.PageSize, Bytes: 1},
		{PID: 1, VA: 2 * units.PageSize, Bytes: 1},
		{PID: 1, VA: 9 * units.PageSize, Bytes: 1},
	}
	if got := meanRunLength(tr); got != 2.0 {
		t.Errorf("meanRunLength = %v, want 2.0", got)
	}
	// Interleaved processes do not break each other's runs.
	tr2 := Trace{
		{PID: 1, VA: 0 * units.PageSize, Bytes: 1},
		{PID: 2, VA: 7 * units.PageSize, Bytes: 1},
		{PID: 1, VA: 1 * units.PageSize, Bytes: 1},
		{PID: 2, VA: 8 * units.PageSize, Bytes: 1},
	}
	if got := meanRunLength(tr2); got != 2.0 {
		t.Errorf("interleaved meanRunLength = %v, want 2.0", got)
	}
}

func TestReuseDistances(t *testing.T) {
	mk := func(pid units.ProcID, page int) Record {
		return Record{PID: pid, VA: units.VAddr(page) * units.PageSize, Bytes: 1}
	}
	// Sequence: A B A  -> reuse of A at distance 1 (one distinct page
	// between), bucket 0 counts distances 0-1.
	tr := Trace{mk(1, 0), mk(1, 1), mk(1, 0)}
	buckets := ReuseDistances(tr)
	total := 0
	for _, c := range buckets {
		total += c
	}
	if total != 1 || buckets[0] != 1 {
		t.Errorf("buckets = %v", buckets)
	}
	// Same page different pid is a different key: no reuse.
	tr = Trace{mk(1, 0), mk(2, 0)}
	if got := ReuseDistances(tr); len(got) != 0 {
		t.Errorf("cross-pid reuse counted: %v", got)
	}
	// Immediate re-touch: distance 0.
	tr = Trace{mk(1, 0), mk(1, 0)}
	if got := ReuseDistances(tr); got[0] != 1 {
		t.Errorf("immediate reuse = %v", got)
	}
}

func TestReuseDistanceLRUProperty(t *testing.T) {
	// Cross-check: for a cyclic sweep of N pages, every reuse has
	// distance N-1.
	const n = 16
	var tr Trace
	for round := 0; round < 3; round++ {
		for p := 0; p < n; p++ {
			tr = append(tr, Record{PID: 1, VA: units.VAddr(p) * units.PageSize, Bytes: 1})
		}
	}
	buckets := ReuseDistances(tr)
	// distance 15 lands in bucket 3 (8..15).
	want := 2 * n
	if len(buckets) < 4 || buckets[3] != want {
		t.Errorf("buckets = %v, want %d in bucket 3", buckets, want)
	}
}

func TestFormatReuseHistogram(t *testing.T) {
	out := FormatReuseHistogram([]int{5, 3})
	if !strings.Contains(out, "reuses") || !strings.Contains(out, "100.0%") {
		t.Errorf("histogram output: %s", out)
	}
	if FormatReuseHistogram(nil) != "no reuses\n" {
		t.Error("empty histogram")
	}
}
