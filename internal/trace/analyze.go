package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"utlb/internal/units"
)

// Summary aggregates the properties of a trace that predict UTLB
// behaviour: footprint and lookups (Table 3's columns), reuse, page
// spans (pre-pinning friendliness), and the spatial-locality run
// lengths that decide whether prefetching pays (§6.4).
type Summary struct {
	Lookups   int
	Footprint int
	Nodes     int
	Processes int
	// Sends and Fetches split the operations.
	Sends   int
	Fetches int
	// Bytes is the total payload volume.
	Bytes int64
	// Duration spans first to last timestamp.
	Duration units.Time
	// ReuseFactor is lookups per distinct page (higher = friendlier).
	ReuseFactor float64
	// MeanRunLength is the average length of maximal runs of
	// consecutive same-process page references (spatial locality).
	MeanRunLength float64
	// PerProcess breaks the trace down by PID, sorted by PID.
	PerProcess []ProcSummary
}

// ProcSummary is one process' slice of the trace.
type ProcSummary struct {
	PID       units.ProcID
	Lookups   int
	Footprint int
}

// Summarize computes a Summary for the trace.
func Summarize(t Trace) Summary {
	var s Summary
	s.Lookups = len(t)
	s.Footprint = t.Footprint()
	nodes := map[units.NodeID]bool{}
	type pk struct {
		pid units.ProcID
		vpn units.VPN
	}
	perProcPages := map[units.ProcID]map[units.VPN]bool{}
	perProcLookups := map[units.ProcID]int{}
	var minT, maxT units.Time
	for i, r := range t {
		nodes[r.Node] = true
		if r.Op == Send {
			s.Sends++
		} else {
			s.Fetches++
		}
		s.Bytes += int64(r.Bytes)
		if i == 0 || r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
		perProcLookups[r.PID]++
		if perProcPages[r.PID] == nil {
			perProcPages[r.PID] = map[units.VPN]bool{}
		}
		pages := units.PagesSpanned(r.VA, int(r.Bytes))
		for p := 0; p < pages; p++ {
			perProcPages[r.PID][r.VA.PageOf()+units.VPN(p)] = true
		}
	}
	s.Nodes = len(nodes)
	s.Processes = len(perProcPages)
	if s.Lookups > 0 {
		s.Duration = maxT - minT
	}
	if s.Footprint > 0 {
		s.ReuseFactor = float64(s.Lookups) / float64(s.Footprint)
	}
	s.MeanRunLength = meanRunLength(t)
	for pid := range perProcPages {
		s.PerProcess = append(s.PerProcess, ProcSummary{
			PID:       pid,
			Lookups:   perProcLookups[pid],
			Footprint: len(perProcPages[pid]),
		})
	}
	sort.Slice(s.PerProcess, func(i, j int) bool { return s.PerProcess[i].PID < s.PerProcess[j].PID })
	return s
}

// meanRunLength measures spatial locality: the mean length of maximal
// runs where a process' successive references touch consecutive pages.
func meanRunLength(t Trace) float64 {
	last := map[units.ProcID]units.VPN{}
	runLen := map[units.ProcID]int{}
	var total, count int
	flush := func(pid units.ProcID) {
		if runLen[pid] > 0 {
			total += runLen[pid]
			count++
		}
		runLen[pid] = 0
	}
	for _, r := range t {
		vpn := r.VA.PageOf()
		if prev, ok := last[r.PID]; ok && vpn == prev+1 {
			runLen[r.PID]++
		} else {
			flush(r.PID)
			runLen[r.PID] = 1
		}
		last[r.PID] = vpn
	}
	for pid := range runLen {
		flush(pid)
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// ReuseDistances computes, for every reference to a previously seen
// (pid, page), the number of distinct (pid, page) pairs touched since
// its last use — the stack distance that determines which cache sizes
// can hold the working set. Results are bucketed into powers of two;
// bucket i counts distances in [2^i, 2^(i+1)). A perfectly LRU-managed
// cache of 2^k entries hits every reference counted in buckets < k.
func ReuseDistances(t Trace) []int {
	type pk struct {
		pid units.ProcID
		vpn units.VPN
	}
	// Stack-distance via an ordered list: positions of pages in an
	// LRU stack. O(n·u) worst case, fine at trace scale.
	var stack []pk
	index := map[pk]int{}
	var buckets []int
	record := func(d int) {
		b := 0
		for v := d; v > 1; v >>= 1 {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	touch := func(k pk) {
		if pos, ok := index[k]; ok {
			record(len(stack) - 1 - pos)
			stack = append(stack[:pos], stack[pos+1:]...)
			for i := pos; i < len(stack); i++ {
				index[stack[i]] = i
			}
		}
		index[k] = len(stack)
		stack = append(stack, k)
	}
	for _, r := range t {
		pages := units.PagesSpanned(r.VA, int(r.Bytes))
		for p := 0; p < pages; p++ {
			touch(pk{r.PID, r.VA.PageOf() + units.VPN(p)})
		}
	}
	return buckets
}

// String renders the summary as readable text.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lookups:        %d\n", s.Lookups)
	fmt.Fprintf(&b, "footprint:      %d pages (%.1f reuses/page)\n", s.Footprint, s.ReuseFactor)
	fmt.Fprintf(&b, "operations:     %d sends, %d fetches, %d bytes\n", s.Sends, s.Fetches, s.Bytes)
	fmt.Fprintf(&b, "span:           %d nodes, %d processes, %s\n", s.Nodes, s.Processes, s.Duration)
	fmt.Fprintf(&b, "spatial runs:   mean %.2f consecutive pages\n", s.MeanRunLength)
	for _, p := range s.PerProcess {
		fmt.Fprintf(&b, "  pid %-4d %7d lookups over %6d pages\n", p.PID, p.Lookups, p.Footprint)
	}
	return b.String()
}

// FormatReuseHistogram renders power-of-two reuse-distance buckets.
func FormatReuseHistogram(buckets []int) string {
	var b strings.Builder
	total := 0
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return "no reuses\n"
	}
	cum := 0
	for i, c := range buckets {
		cum += c
		lo := int(math.Pow(2, float64(i)))
		if i == 0 {
			lo = 0
		}
		fmt.Fprintf(&b, "distance < %-8d %7d reuses (%5.1f%% cumulative)\n",
			lo*2, c, 100*float64(cum)/float64(total))
	}
	return b.String()
}
