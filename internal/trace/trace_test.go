package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"utlb/internal/units"
)

func sample() Trace {
	return Trace{
		{Time: 300, Node: 0, PID: 2, Op: Fetch, VA: 0x2000, Bytes: 4096},
		{Time: 100, Node: 0, PID: 1, Op: Send, VA: 0x1000, Bytes: 4096},
		{Time: 200, Node: 1, PID: 3, Op: Send, VA: 0x1800, Bytes: 100},
		{Time: 200, Node: 0, PID: 4, Op: Send, VA: 0x0, Bytes: 1},
	}
}

func TestOpString(t *testing.T) {
	if Send.String() != "send" || Fetch.String() != "fetch" {
		t.Error("Op strings wrong")
	}
	if Op(7).String() == "" {
		t.Error("unknown op should format")
	}
}

func TestSortByTime(t *testing.T) {
	tr := sample()
	tr.SortByTime()
	for i := 1; i < len(tr); i++ {
		if tr[i].Time < tr[i-1].Time {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Equal timestamps tie-break by node.
	if tr[1].Node != 0 || tr[2].Node != 1 {
		t.Errorf("tie-break wrong: %+v %+v", tr[1], tr[2])
	}
}

func TestMerge(t *testing.T) {
	a := Trace{{Time: 5, PID: 1}}
	b := Trace{{Time: 3, PID: 2}, {Time: 7, PID: 2}}
	m := Merge(a, b)
	if len(m) != 3 || m[0].Time != 3 || m[1].Time != 5 || m[2].Time != 7 {
		t.Errorf("Merge = %+v", m)
	}
}

func TestFootprintAndLookups(t *testing.T) {
	tr := Trace{
		{PID: 1, VA: 0, Bytes: 4096},    // page 0
		{PID: 1, VA: 0, Bytes: 4096},    // page 0 again
		{PID: 1, VA: 4096, Bytes: 8192}, // pages 1,2
		{PID: 2, VA: 0, Bytes: 1},       // page 0, other pid
		{PID: 1, VA: 4095, Bytes: 2},    // pages 0,1
	}
	if tr.Lookups() != 5 {
		t.Errorf("Lookups = %d", tr.Lookups())
	}
	if got := tr.Footprint(); got != 4 {
		t.Errorf("Footprint = %d, want 4 (pid1: 0,1,2; pid2: 0)", got)
	}
}

func TestFilterNodeAndPIDs(t *testing.T) {
	tr := sample()
	n0 := tr.FilterNode(0)
	if len(n0) != 3 {
		t.Errorf("FilterNode(0) = %d records", len(n0))
	}
	pids := tr.PIDs()
	want := []units.ProcID{1, 2, 3, 4}
	if !reflect.DeepEqual(pids, want) {
		t.Errorf("PIDs = %v", pids)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", got, tr)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteBinary(&buf, sample())
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", got, tr)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n100 0 1 send 0x1000 4096\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if got[0].VA != 0x1000 || got[0].Op != Send {
		t.Errorf("record = %+v", got[0])
	}
}

func TestTextBadInput(t *testing.T) {
	for _, in := range []string{"garbage", "1 2 3 teleport 0x0 1", "1 2\n"} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(times []uint32, seed uint8) bool {
		tr := make(Trace, len(times))
		for i, tm := range times {
			tr[i] = Record{
				Time:  units.Time(tm),
				Node:  units.NodeID(i % 4),
				PID:   units.ProcID(i%16 + 1),
				Op:    Op(i % 2),
				VA:    units.VAddr(uint64(tm) * 4096 % (1 << 31)),
				Bytes: int32(int(seed)*7 + 1),
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(tr) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsSortedByTime(t *testing.T) {
	sorted := Trace{
		{Time: 1, Node: 0, PID: 1},
		{Time: 1, Node: 0, PID: 2},
		{Time: 1, Node: 1, PID: 1},
		{Time: 5, Node: 0, PID: 1},
	}
	if !sorted.IsSortedByTime() {
		t.Error("sorted trace reported unsorted")
	}
	if !(Trace{}).IsSortedByTime() || !(Trace{{Time: 9}}).IsSortedByTime() {
		t.Error("trivial traces reported unsorted")
	}
	for name, tr := range map[string]Trace{
		"time": {{Time: 5}, {Time: 1}},
		"node": {{Time: 1, Node: 2}, {Time: 1, Node: 1}},
		"pid":  {{Time: 1, Node: 0, PID: 2}, {Time: 1, Node: 0, PID: 1}},
	} {
		if tr.IsSortedByTime() {
			t.Errorf("%s-unsorted trace reported sorted", name)
		}
		tr.SortByTime()
		if !tr.IsSortedByTime() {
			t.Errorf("%s: SortByTime left trace unsorted", name)
		}
	}
}
