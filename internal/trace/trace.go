// Package trace defines the communication-trace format the evaluation
// runs on. The paper instruments the VMMC software "to trace each send
// and remote read request along with a globally-synchronized clock",
// then serialises the per-process traces by timestamp and feeds them to
// the UTLB simulator (§6). A Record captures exactly that: who
// communicated, when, which operation, and which user buffer.
package trace

import (
	"fmt"
	"sort"

	"utlb/internal/units"
)

// Op is the traced communication operation.
type Op uint8

// Operations appearing in VMMC traces.
const (
	// Send is a remote store from a local buffer (VMMC send).
	Send Op = iota
	// Fetch is a remote read into a local buffer (VMMC remote-fetch).
	Fetch
)

func (o Op) String() string {
	switch o {
	case Send:
		return "send"
	case Fetch:
		return "fetch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one traced communication request.
type Record struct {
	// Time is the globally-synchronised timestamp.
	Time units.Time
	// Node is the host the request was issued on.
	Node units.NodeID
	// PID is the issuing process.
	PID units.ProcID
	// Op is the request type.
	Op Op
	// VA and Bytes describe the local user buffer.
	VA    units.VAddr
	Bytes int32
}

// Trace is a sequence of records.
type Trace []Record

// SortByTime serialises the trace by timestamp, breaking ties by
// (node, pid) for determinism — the paper's "time stamps are used to
// serialize the traces".
func (t Trace) SortByTime() {
	sort.SliceStable(t, func(i, j int) bool {
		if t[i].Time != t[j].Time {
			return t[i].Time < t[j].Time
		}
		if t[i].Node != t[j].Node {
			return t[i].Node < t[j].Node
		}
		return t[i].PID < t[j].PID
	})
}

// Merge combines traces and serialises the result by timestamp.
func Merge(traces ...Trace) Trace {
	var total int
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	out.SortByTime()
	return out
}

// Lookups reports the number of records (communication operations —
// translation lookups in the paper's terminology, since the SVM
// applications transfer about one page per operation).
func (t Trace) Lookups() int { return len(t) }

// Footprint reports the number of distinct (pid, page) pairs touched —
// the paper's "communication memory footprint" in 4 KB pages.
func (t Trace) Footprint() int {
	type pk struct {
		pid units.ProcID
		vpn units.VPN
	}
	seen := make(map[pk]bool)
	for _, r := range t {
		pages := units.PagesSpanned(r.VA, int(r.Bytes))
		first := r.VA.PageOf()
		for i := 0; i < pages; i++ {
			seen[pk{r.PID, first + units.VPN(i)}] = true
		}
	}
	return len(seen)
}

// FilterNode returns the records issued on node.
func (t Trace) FilterNode(node units.NodeID) Trace {
	var out Trace
	for _, r := range t {
		if r.Node == node {
			out = append(out, r)
		}
	}
	return out
}

// PIDs reports the distinct process IDs in the trace, sorted.
func (t Trace) PIDs() []units.ProcID {
	set := map[units.ProcID]bool{}
	for _, r := range t {
		set[r.PID] = true
	}
	out := make([]units.ProcID, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
