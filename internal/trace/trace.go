// Package trace defines the communication-trace format the evaluation
// runs on. The paper instruments the VMMC software "to trace each send
// and remote read request along with a globally-synchronized clock",
// then serialises the per-process traces by timestamp and feeds them to
// the UTLB simulator (§6). A Record captures exactly that: who
// communicated, when, which operation, and which user buffer.
package trace

import (
	"fmt"
	"sort"

	"utlb/internal/units"
)

// Op is the traced communication operation.
type Op uint8

// Operations appearing in VMMC traces.
const (
	// Send is a remote store from a local buffer (VMMC send).
	Send Op = iota
	// Fetch is a remote read into a local buffer (VMMC remote-fetch).
	Fetch
)

func (o Op) String() string {
	switch o {
	case Send:
		return "send"
	case Fetch:
		return "fetch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one traced communication request.
type Record struct {
	// Time is the globally-synchronised timestamp.
	Time units.Time
	// Node is the host the request was issued on.
	Node units.NodeID
	// PID is the issuing process.
	PID units.ProcID
	// Op is the request type.
	Op Op
	// VA and Bytes describe the local user buffer.
	VA    units.VAddr
	Bytes int32
}

// Trace is a sequence of records.
type Trace []Record

// timeLess is the serialisation order: timestamp, breaking ties by
// (node, pid) for determinism — the paper's "time stamps are used to
// serialize the traces".
func timeLess(a, b Record) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.PID < b.PID
}

// SortByTime serialises the trace in timeLess order.
func (t Trace) SortByTime() {
	sort.SliceStable(t, func(i, j int) bool { return timeLess(t[i], t[j]) })
}

// IsSortedByTime reports whether the trace is already serialised in
// SortByTime order; a stable sort of such a trace is a no-op, letting
// consumers skip the copy+sort entirely. Generated and merged traces
// are sorted by construction.
func (t Trace) IsSortedByTime() bool {
	for i := 1; i < len(t); i++ {
		if timeLess(t[i], t[i-1]) {
			return false
		}
	}
	return true
}

// Merge combines traces and serialises the result by timestamp.
func Merge(traces ...Trace) Trace {
	var total int
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	out.SortByTime()
	return out
}

// Lookups reports the number of records (communication operations —
// translation lookups in the paper's terminology, since the SVM
// applications transfer about one page per operation).
func (t Trace) Lookups() int { return len(t) }

// Footprint reports the number of distinct (pid, page) pairs touched —
// the paper's "communication memory footprint" in 4 KB pages.
func (t Trace) Footprint() int {
	type pk struct {
		pid units.ProcID
		vpn units.VPN
	}
	//lint:ignore allocstatic whole-trace summary runs once per trace at setup/report time, never per simulated reference
	seen := make(map[pk]bool)
	for _, r := range t {
		pages := units.PagesSpanned(r.VA, int(r.Bytes))
		first := r.VA.PageOf()
		for i := 0; i < pages; i++ {
			seen[pk{r.PID, first + units.VPN(i)}] = true
		}
	}
	return len(seen)
}

// FilterNode returns the records issued on node.
func (t Trace) FilterNode(node units.NodeID) Trace {
	var out Trace
	for _, r := range t {
		if r.Node == node {
			out = append(out, r)
		}
	}
	return out
}

// PIDs reports the distinct process IDs in the trace, sorted.
func (t Trace) PIDs() []units.ProcID {
	//lint:ignore allocstatic whole-trace summary runs once per trace at setup/report time, never per simulated reference
	set := map[units.ProcID]bool{}
	for _, r := range t {
		set[r.PID] = true
	}
	out := make([]units.ProcID, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
