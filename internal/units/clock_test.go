package units

import "testing"

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Errorf("fresh clock Now = %d", c.Now())
	}
	c.Advance(5 * Microsecond)
	c.Advance(0)
	if c.Now() != 5*Microsecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative advance")
		}
	}()
	c.Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Errorf("Now = %d, want 10", c.Now())
	}
	c.AdvanceTo(5) // past timestamps never rewind the clock
	if c.Now() != 10 {
		t.Errorf("Now after past AdvanceTo = %d, want 10", c.Now())
	}
}

// TestClockBusyVsPosition pins the work/wait split: Advance accrues
// busy time, AdvanceTo (waiting on another component) does not, and a
// clock that never waits has Busy() == Now() — the invariant the
// sequential-compatibility mode relies on.
func TestClockBusyVsPosition(t *testing.T) {
	c := NewClock()
	c.Advance(4)
	if c.Busy() != 4 || c.Now() != 4 {
		t.Fatalf("after work: Busy %d Now %d, want 4/4", c.Busy(), c.Now())
	}
	c.AdvanceTo(10) // 6 units of waiting
	if c.Busy() != 4 {
		t.Errorf("waiting accrued busy time: Busy = %d, want 4", c.Busy())
	}
	if c.Now() != 10 {
		t.Errorf("Now = %d, want 10", c.Now())
	}
	c.Advance(3)
	if c.Busy() != 7 || c.Now() != 13 {
		t.Errorf("after more work: Busy %d Now %d, want 7/13", c.Busy(), c.Now())
	}

	seq := NewClock()
	seq.Advance(2)
	seq.Advance(9)
	if seq.Busy() != seq.Now() {
		t.Errorf("never-waiting clock: Busy %d != Now %d", seq.Busy(), seq.Now())
	}
}
