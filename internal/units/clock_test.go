package units

import "testing"

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Errorf("fresh clock Now = %d", c.Now())
	}
	c.Advance(5 * Microsecond)
	c.Advance(0)
	if c.Now() != 5*Microsecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative advance")
		}
	}()
	c.Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Errorf("Now = %d, want 10", c.Now())
	}
	c.AdvanceTo(5) // past timestamps never rewind the clock
	if c.Now() != 10 {
		t.Errorf("Now after past AdvanceTo = %d, want 10", c.Now())
	}
}
