package units

import (
	"testing"
	"testing/quick"
)

func TestTimeMicros(t *testing.T) {
	cases := []struct {
		t    Time
		want float64
	}{
		{0, 0},
		{Microsecond, 1},
		{500 * Nanosecond, 0.5},
		{Millisecond, 1000},
		{27 * Microsecond, 27},
	}
	for _, c := range cases {
		if got := c.t.Micros(); got != c.want {
			t.Errorf("Time(%d).Micros() = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := (1800 * Nanosecond).String(); got != "1.80us" {
		t.Errorf("String() = %q, want %q", got, "1.80us")
	}
}

func TestFromMicros(t *testing.T) {
	if got := FromMicros(2.5); got != 2500*Nanosecond {
		t.Errorf("FromMicros(2.5) = %d, want 2500", got)
	}
}

func TestPageGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	va := VAddr(0x12345)
	if va.PageOf() != 0x12 {
		t.Errorf("PageOf = %#x, want 0x12", va.PageOf())
	}
	if va.Offset() != 0x345 {
		t.Errorf("Offset = %#x, want 0x345", va.Offset())
	}
	if VPN(0x12).Addr() != 0x12000 {
		t.Errorf("VPN.Addr = %#x, want 0x12000", VPN(0x12).Addr())
	}
	if PFN(3).Addr() != 3*PageSize {
		t.Errorf("PFN.Addr = %#x", PFN(3).Addr())
	}
	if PAddr(3*PageSize+7).PageOf() != 3 {
		t.Errorf("PAddr.PageOf wrong")
	}
}

func TestPagesSpanned(t *testing.T) {
	cases := []struct {
		va   VAddr
		n    int
		want int
	}{
		{0, 0, 0},
		{0, -4, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{PageSize - 1, 2, 2},
		{PageSize - 1, 1, 1},
		{0, 4 * PageSize, 4},
		{100, 4 * PageSize, 5},
	}
	for _, c := range cases {
		if got := PagesSpanned(c.va, c.n); got != c.want {
			t.Errorf("PagesSpanned(%#x, %d) = %d, want %d", c.va, c.n, got, c.want)
		}
	}
}

func TestPagesSpannedProperty(t *testing.T) {
	// Every address in [va, va+n) must fall inside the spanned page range,
	// and the range must be minimal (first and last pages are touched).
	f := func(vaRaw uint32, nRaw uint16) bool {
		va := VAddr(vaRaw)
		n := int(nRaw)
		got := PagesSpanned(va, n)
		if n <= 0 {
			return got == 0
		}
		first := va.PageOf()
		last := (va + VAddr(n) - 1).PageOf()
		return got == int(last-first)+1 && got >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVPNRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		vpn := VPN(v)
		return vpn.Addr().PageOf() == vpn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
