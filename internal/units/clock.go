package units

// Clock is a monotonically advancing virtual clock. Components charge
// simulated time to the clock of the machine they run on; experiments
// read elapsed time by differencing Now around an operation, the same
// way the paper times operations with the Pentium cycle counter and the
// LANai real-time clock register.
//
// The clock distinguishes position from occupancy: Advance models the
// component doing work (both position and busy time move), AdvanceTo
// models the component waiting for another component or an in-flight
// DMA (position moves, busy time does not). Under the strictly
// sequential charging model nothing ever waits, so Busy() == Now()
// there — the overlap engine is where the two diverge.
type Clock struct {
	now  Time
	busy Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Busy reports the accumulated working time: every Advance, none of
// the AdvanceTo waits. Utilisation is Busy()/Now().
func (c *Clock) Busy() Time { return c.busy }

// Advance moves the clock forward by d, accruing busy time. Negative
// advances panic: time in the simulation never runs backwards.
func (c *Clock) Advance(d Time) {
	if d < 0 {
		panic("units: clock advanced by negative duration")
	}
	c.now += d
	c.busy += d
}

// AdvanceTo moves the clock to t if t is in the future; otherwise it is
// a no-op. Used when synchronising a component with an event timestamp:
// the elapsed interval is waiting, not work, so busy time is untouched.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}
