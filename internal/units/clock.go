package units

// Clock is a monotonically advancing virtual clock. Components charge
// simulated time to the clock of the machine they run on; experiments
// read elapsed time by differencing Now around an operation, the same
// way the paper times operations with the Pentium cycle counter and the
// LANai real-time clock register.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances panic: time in
// the simulation never runs backwards.
func (c *Clock) Advance(d Time) {
	if d < 0 {
		panic("units: clock advanced by negative duration")
	}
	c.now += d
}

// AdvanceTo moves the clock to t if t is in the future; otherwise it is
// a no-op. Used when synchronising a component with an event timestamp.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}
