// Package units defines the shared scalar types of the simulation:
// virtual time, addresses, page geometry, and byte sizes.
//
// All simulated time is an integer count of nanoseconds. The paper reports
// microseconds with a 0.5 µs clock on the LANai and a cycle counter on the
// host; nanosecond integers let us compose costs without float drift while
// still printing microseconds to match the paper's tables.
package units

import "fmt"

// Time is a point in (or duration of) simulated time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as floating-point microseconds, the unit used by every
// table in the paper.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time in microseconds with two decimals ("1.80us").
func (t Time) String() string { return fmt.Sprintf("%.2fus", t.Micros()) }

// FromMicros converts floating-point microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// Page geometry. The paper's cluster uses 4 KB pages everywhere; the VMMC
// firmware breaks transfers at 4 KB boundaries and the UTLB translates one
// page at a time.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1
)

// VAddr is a virtual address in a process address space.
type VAddr uint64

// PAddr is a physical (host DRAM) address.
type PAddr uint64

// VPN is a virtual page number.
type VPN uint64

// PFN is a physical frame number.
type PFN uint64

// NoPFN marks an unmapped or invalid translation.
const NoPFN = PFN(^uint64(0))

// PageOf returns the virtual page containing va.
func (va VAddr) PageOf() VPN { return VPN(va >> PageShift) }

// Offset returns the offset of va within its page.
func (va VAddr) Offset() uint64 { return uint64(va) & PageMask }

// Addr returns the first virtual address of page v.
func (v VPN) Addr() VAddr { return VAddr(v) << PageShift }

// Addr returns the first physical address of frame p.
func (p PFN) Addr() PAddr { return PAddr(p) << PageShift }

// PageOf returns the physical frame containing pa.
func (pa PAddr) PageOf() PFN { return PFN(pa >> PageShift) }

// PagesSpanned reports how many pages the byte range [va, va+n) touches.
// A zero-length range touches no pages.
func PagesSpanned(va VAddr, n int) int {
	if n <= 0 {
		return 0
	}
	first := va.PageOf()
	last := (va + VAddr(n) - 1).PageOf()
	return int(last-first) + 1
}

// Byte sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// ProcID identifies a process on a host. The Shared UTLB-Cache tags each
// entry with a process tag, so the identifier is shared across layers.
type ProcID uint32

// NodeID identifies a host (and its network interface) in the cluster.
type NodeID uint32
