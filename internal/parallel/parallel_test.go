package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		got, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", w, i, v)
			}
		}
	}
	SetWorkers(0)
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(0) = %v, %v", got, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		_, err := Map(50, func(i int) (int, error) {
			if i%10 == 3 { // fails at 3, 13, 23, ...
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Errorf("workers=%d: err = %v, want fail-3", w, err)
		}
	}
	SetWorkers(0)
}

func TestDoPropagatesError(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	want := errors.New("boom")
	if err := Do(10, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Errorf("Do error = %v", err)
	}
	if err := Do(10, func(int) error { return nil }); err != nil {
		t.Errorf("Do clean run errored: %v", err)
	}
}

func TestSequentialModeRunsInline(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	// Width 1 must stop at the first error without touching later
	// indices — today's sequential loop semantics.
	var calls atomic.Int64
	_, err := Map(10, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return 0, nil
	})
	if err == nil || calls.Load() != 3 {
		t.Errorf("sequential mode ran %d calls (err %v), want 3", calls.Load(), err)
	}
}

func TestNestedMap(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	got, err := Map(8, func(i int) (int, error) {
		inner, err := Map(8, func(j int) (int, error) { return i * j, nil })
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*28 {
			t.Errorf("got[%d] = %d, want %d", i, v, i*28)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Errorf("Workers() = %d", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Errorf("Workers() after reset = %d", Workers())
	}
	SetWorkers(0)
}
