// Package parallel is the repo's worker-pool execution engine: it fans
// independent computations (simulation runs, trace generations, whole
// experiments) out across a bounded set of goroutines while keeping
// results in submission order, so parallel execution is byte-identical
// to sequential execution. Every experiment loop in
// internal/experiments routes through Map/Do; the pool width is
// process-wide and set once from cmd/utlbsim's -parallel flag (or
// utlb.SetParallelism).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width; 0 means GOMAXPROCS.
var workers atomic.Int64

// SetWorkers fixes the pool width for subsequent Map/Do calls. n <= 0
// resets to the default (GOMAXPROCS at call time). Width 1 runs every
// task inline on the caller's goroutine, preserving strictly
// sequential behaviour.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers reports the effective pool width.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0) .. fn(count-1) with at most Workers() of them in
// flight and returns the results in index order. When more than one
// task fails, the error of the lowest index is returned, matching what
// a sequential loop would have reported first; results are only valid
// when the error is nil.
//
// Map may be nested (a mapped task may itself call Map); each call
// sizes its own worker set, and the Go scheduler multiplexes the
// goroutines onto GOMAXPROCS threads.
func Map[T any](count int, fn func(i int) (T, error)) ([]T, error) {
	if count <= 0 {
		return nil, nil
	}
	results := make([]T, count)
	w := Workers()
	if w > count {
		w = count
	}
	if w <= 1 {
		for i := 0; i < count; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	var (
		next   atomic.Int64 // next index to claim
		failed atomic.Int64 // lowest failing index + 1 (0 = none)
		mu     sync.Mutex
		errs   = make(map[int]error)
		wg     sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				// Indices past a known failure cannot change the outcome:
				// sequential execution would never have reached them.
				if f := failed.Load(); f != 0 && i > int(f)-1 {
					continue
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					for {
						f := failed.Load()
						if f != 0 && int(f)-1 <= i {
							break
						}
						if failed.CompareAndSwap(f, int64(i)+1) {
							break
						}
					}
					continue
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	if f := failed.Load(); f != 0 {
		return nil, errs[int(f)-1]
	}
	return results, nil
}

// Do is Map without result values: it runs fn(0) .. fn(count-1) with
// bounded concurrency and returns the lowest-index error, if any.
func Do(count int, fn func(i int) error) error {
	_, err := Map(count, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
