// Package utlb is a full reproduction of "UTLB: A Mechanism for
// Address Translation on Network Interfaces" (Chen, Bilas, Damianakis,
// Dubnicki, Li — ASPLOS 1998) as a simulated Myrinet PC cluster in
// pure Go.
//
// The package exposes three layers:
//
//   - A live simulated cluster running VMMC (virtual memory-mapped
//     communication) with Hierarchical-UTLB address translation:
//     build one with NewCluster, spawn processes, export/import
//     buffers, and move real bytes with Send/Fetch/Redirect while the
//     simulation charges calibrated 1998-era costs to virtual clocks.
//
//   - The trace-driven evaluation of the paper's §6: generate
//     SPLASH-2-like communication traces with GenerateTrace, run them
//     through the UTLB or the interrupt-based baseline with Simulate,
//     and read miss rates, pin/unpin counts and lookup costs from the
//     result.
//
//   - The paper's tables and figures: RunExperiment regenerates any of
//     them (see ExperimentNames), as does the utlbsim command.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package utlb

import (
	"io"
	"net/http"

	"utlb/internal/core"
	"utlb/internal/experiments"
	"utlb/internal/fabric"
	"utlb/internal/obs"
	"utlb/internal/obs/analyze"
	"utlb/internal/parallel"
	"utlb/internal/serve"
	"utlb/internal/sim"
	"utlb/internal/svm"
	"utlb/internal/trace"
	"utlb/internal/units"
	"utlb/internal/vmmc"
	"utlb/internal/workload"
)

// Scalar types shared across the API.
type (
	// Time is simulated time in nanoseconds.
	Time = units.Time
	// VAddr is a virtual address in a process address space.
	VAddr = units.VAddr
	// NodeID identifies a cluster node.
	NodeID = units.NodeID
	// ProcID identifies a process.
	ProcID = units.ProcID
)

// PageSize is the simulated page size (4 KB, as on the paper's
// machines).
const PageSize = units.PageSize

// FromMicros converts microseconds to Time.
func FromMicros(us float64) Time { return units.FromMicros(us) }

// Cluster layer.
type (
	// Cluster is a simulated Myrinet PC cluster running VMMC with
	// UTLB address translation.
	Cluster = vmmc.Cluster
	// ClusterOptions configure NewCluster.
	ClusterOptions = vmmc.Options
	// Node is one cluster machine.
	Node = vmmc.Node
	// Proc is a process' VMMC handle: Export, Import, Send, Fetch,
	// Redirect.
	Proc = vmmc.Proc
	// BufferID names an exported receive buffer.
	BufferID = vmmc.BufferID
	// Imported is a handle on a remote receive buffer.
	Imported = vmmc.Imported
	// FaultPlan injects network loss and corruption.
	FaultPlan = fabric.FaultPlan
	// LibConfig selects a process' replacement policy and pre-pinning.
	LibConfig = core.LibConfig
	// PolicyKind names a replacement policy.
	PolicyKind = core.PolicyKind
)

// Replacement policies (§3.4).
const (
	LRU    = core.LRU
	MRU    = core.MRU
	LFU    = core.LFU
	MFU    = core.MFU
	Random = core.Random
)

// NewCluster builds a simulated cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) { return vmmc.NewCluster(opts) }

// Trace-driven evaluation layer.
type (
	// Trace is a communication trace (§6's input).
	Trace = trace.Trace
	// TraceRecord is one traced operation.
	TraceRecord = trace.Record
	// SimConfig parameterises Simulate.
	SimConfig = sim.Config
	// SimResult carries measured statistics and derived rates.
	SimResult = sim.Result
	// Mechanism selects UTLB or the interrupt baseline.
	Mechanism = sim.Mechanism
	// SimScratch is reusable per-run working memory for SimulateWith.
	SimScratch = sim.RunScratch
	// WorkloadSpec describes one of the seven applications.
	WorkloadSpec = workload.Spec
	// WorkloadConfig parameterises trace generation.
	WorkloadConfig = workload.Config
)

// Mechanisms.
const (
	UTLB      = sim.UTLB
	Interrupt = sim.Interrupt
)

// DefaultSimConfig is the paper's baseline configuration: 8 K entry
// direct-mapped cache with index offsetting, no prefetch, LRU,
// infinite memory.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate runs a trace through the configured mechanism. The config
// is validated (start from DefaultSimConfig and override fields); an
// invalid config — including the zero value — is an error rather than
// a silent substitution of defaults.
func Simulate(tr Trace, cfg SimConfig) (SimResult, error) { return sim.Run(tr, cfg) }

// NewSimScratch allocates reusable working memory for SimulateWith.
func NewSimScratch() *SimScratch { return sim.NewRunScratch() }

// SimulateWith is Simulate with caller-owned scratch memory: repeated
// runs through the same scratch reuse the cache storage, classifier
// and library state instead of reallocating them. Results are
// identical to Simulate's. The scratch must not be shared between
// concurrent runs. Simulate itself draws scratch from a pool, so
// SimulateWith matters when the caller wants a deterministic
// allocation profile (the pool can be drained by GC at any time).
func SimulateWith(tr Trace, cfg SimConfig, scr *SimScratch) (SimResult, error) {
	return sim.RunWith(tr, cfg, scr)
}

// Workloads lists the seven SPLASH-2-like application specs in the
// paper's Table 3 order.
func Workloads() []*WorkloadSpec { return workload.Specs() }

// WorkloadByName returns the named application spec.
func WorkloadByName(name string) (*WorkloadSpec, error) { return workload.ByName(name) }

// GenerateBulkTrace produces the multi-page bulk-transfer workload
// (1-16 pages per operation) that the batched translation path
// amortises over; see SimConfig.BatchPages and the batchsweep
// experiment.
func GenerateBulkTrace(node NodeID, firstPID ProcID, seed int64, scale float64) Trace {
	return workload.BulkTransfer(node, firstPID, seed, scale)
}

// GenerateTrace produces one node's communication trace for the named
// application at the given scale (1.0 = the paper's size).
func GenerateTrace(app string, seed int64, scale float64) (Trace, error) {
	spec, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	return spec.Generate(workload.Config{Node: 0, FirstPID: 1, Seed: seed, Scale: scale}), nil
}

// ReadTrace and WriteTrace (de)serialise traces in the binary format.
func ReadTrace(r io.Reader) (Trace, error)       { return trace.ReadBinary(r) }
func WriteTrace(w io.Writer, tr Trace) error     { return trace.WriteBinary(w, tr) }
func ReadTraceText(r io.Reader) (Trace, error)   { return trace.ReadText(r) }
func WriteTraceText(w io.Writer, tr Trace) error { return trace.WriteText(w, tr) }

// Shared-virtual-memory layer: the home-based lazy-release-consistency
// protocol the paper's traces were captured under, runnable on the
// simulated cluster. SVM kernels (Jacobi, transpose, lock reductions)
// both exercise the UTLB end to end and capture paper-style traces.
type (
	// SVM is a home-based LRC shared-memory system over the cluster.
	SVM = svm.System
	// SVMConfig parameterises NewSVM.
	SVMConfig = svm.Config
	// SVMPeer is one SVM process.
	SVMPeer = svm.Peer
)

// NewSVM builds an SVM system on a fresh simulated cluster.
func NewSVM(cfg SVMConfig) (*SVM, error) { return svm.New(cfg) }

// RunJacobi executes a Jacobi relaxation kernel over SVM (see
// svm.RunJacobi); JacobiSerial and JacobiResult support verification.
func RunJacobi(s *SVM, n, iters int) error { return svm.RunJacobi(s, n, iters) }

// JacobiSerial computes the reference result sequentially.
func JacobiSerial(n, iters int) []uint32 { return svm.JacobiSerial(n, iters) }

// JacobiResult reads back the final generation of a RunJacobi run.
func JacobiResult(s *SVM, n, iters int) ([]uint32, error) { return svm.JacobiResult(s, n, iters) }

// RunTranspose executes a strided matrix-transpose kernel over SVM.
func RunTranspose(s *SVM, n int) error { return svm.RunTranspose(s, n) }

// RunSumReduce executes a lock-based reduction kernel over SVM.
func RunSumReduce(s *SVM, n int) (uint32, error) { return svm.RunSumReduce(s, n) }

// Observability layer: typed event recording across every simulation
// component, with Chrome-trace and Prometheus-text exporters. Attach a
// Recorder via SimConfig.Recorder or ClusterOptions.Recorder (single
// runs), or an EventCollector via ExperimentOptions.Obs (experiment
// sweeps, one labelled buffer per run, deterministic merge).
type (
	// Recorder receives simulation events; nil disables recording at
	// zero cost.
	Recorder = obs.Recorder
	// Event is one recorded occurrence (see obs.Kind for the taxonomy).
	Event = obs.Event
	// EventKind says what happened.
	EventKind = obs.Kind
	// EventBuffer is the buffered single-run Recorder.
	EventBuffer = obs.Buffer
	// EventCollector hands out per-run buffers and merges them
	// deterministically (sorted by label, independent of scheduling).
	EventCollector = obs.Collector
	// EventRun is one labelled event stream, the exporters' input unit.
	EventRun = obs.Run
)

// NewEventBuffer returns an empty single-run event buffer.
func NewEventBuffer(label string) *EventBuffer { return obs.NewBuffer(label) }

// NewEventCollector returns an empty collector for concurrent runs.
func NewEventCollector() *EventCollector { return obs.NewCollector() }

// WriteChromeTrace writes runs as Chrome trace_event JSON, loadable in
// Perfetto or chrome://tracing. Byte-deterministic.
func WriteChromeTrace(w io.Writer, runs []EventRun) error { return obs.WriteChromeTrace(w, runs) }

// WriteMetrics aggregates runs and writes Prometheus-style text
// metrics: per-kind event counters and log-scale latency histograms
// for span kinds. Byte-deterministic.
func WriteMetrics(w io.Writer, runs []EventRun) error {
	return obs.WritePrometheus(w, obs.Aggregate(runs))
}

// AnalysisReport is the transfer-level latency analysis: per-kind
// duration percentiles, a per-experiment critical-path breakdown
// (check vs probe vs DMA vs pin vs interrupt time), and the slowest
// transfers with their event chains.
type AnalysisReport = analyze.Report

// AnalyzeEvents computes the transfer-level report over runs, keeping
// the topK slowest transfers per experiment (topK < 1 means 10). Pure
// function of its input: byte-stable at any parallelism.
func AnalyzeEvents(runs []EventRun, topK int) *AnalysisReport {
	return analyze.Analyze(runs, topK)
}

// WriteAnalysis analyzes runs and writes the report as indented JSON.
func WriteAnalysis(w io.Writer, runs []EventRun, topK int) error {
	return analyze.WriteJSON(w, analyze.Analyze(runs, topK))
}

// NewObservabilityHandler returns the live observability HTTP handler
// behind `utlbsim serve`: /metrics, /api/runs, /api/runs/{slug}/trace,
// /api/analyze and /debug/pprof/, with experiments run on demand from
// query parameters.
func NewObservabilityHandler() http.Handler { return serve.New().Handler() }

// Experiment layer.

// ExperimentOptions tune experiment execution.
type ExperimentOptions = experiments.Options

// SetParallelism fixes the process-wide worker-pool width used by the
// experiment engine (cmd/utlbsim's -parallel flag). 1 runs every
// experiment loop strictly sequentially; n <= 0 resets to GOMAXPROCS.
// Results are byte-identical at any width.
func SetParallelism(n int) { parallel.SetWorkers(n) }

// Parallelism reports the effective worker-pool width.
func Parallelism() int { return parallel.Workers() }

// ExperimentNames lists every reproducible table and figure.
func ExperimentNames() []string { return append([]string(nil), experiments.Names...) }

// RunExperiment regenerates the named table or figure, writing its
// text rendering to w.
func RunExperiment(name string, opts ExperimentOptions, w io.Writer) error {
	return experiments.Run(name, opts, w)
}

// RunAllExperiments regenerates the full evaluation.
func RunAllExperiments(opts ExperimentOptions, w io.Writer) error {
	return experiments.RunAll(opts, w)
}
