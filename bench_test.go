package utlb

// One benchmark per paper table/figure (regenerating the experiment at
// reduced scale), plus micro-benchmarks of the hot paths the paper
// times in microseconds. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks measure the cost of reproducing the
// result, not the simulated times themselves — those are printed by
// cmd/utlbsim and recorded in EXPERIMENTS.md.

import (
	"io"
	"testing"

	"utlb/internal/bus"
	"utlb/internal/core"
	"utlb/internal/hostos"
	"utlb/internal/nicsim"
	"utlb/internal/phys"
	"utlb/internal/tlbcache"
	"utlb/internal/units"
	"utlb/internal/vm"
)

// benchOpts shrinks the workloads so the full bench suite runs in
// seconds; pass -bench-scale via experiments at full size in utlbsim.
func benchOpts() ExperimentOptions {
	return ExperimentOptions{Scale: 0.05, Seed: 1998, Apps: []string{"barnes", "fft"}}
}

func benchExperiment(b *testing.B, name string, opts ExperimentOptions) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(name, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1HostOverhead regenerates Table 1 (host-side check,
// pin, unpin costs).
func BenchmarkTable1HostOverhead(b *testing.B) { benchExperiment(b, "table1", benchOpts()) }

// BenchmarkTable2NIOverhead regenerates Table 2 (NIC hit, DMA and
// miss costs vs prefetch width).
func BenchmarkTable2NIOverhead(b *testing.B) { benchExperiment(b, "table2", benchOpts()) }

// BenchmarkTable3Workloads regenerates Table 3 (workload calibration).
func BenchmarkTable3Workloads(b *testing.B) { benchExperiment(b, "table3", benchOpts()) }

// BenchmarkTable4UTLBvsIntr regenerates Table 4 (UTLB vs interrupt
// baseline, infinite memory).
func BenchmarkTable4UTLBvsIntr(b *testing.B) { benchExperiment(b, "table4", benchOpts()) }

// BenchmarkTable5Limited regenerates Table 5 (4 MB pin quota).
func BenchmarkTable5Limited(b *testing.B) { benchExperiment(b, "table5", benchOpts()) }

// BenchmarkTable6LookupCost regenerates Table 6 (average lookup cost).
func BenchmarkTable6LookupCost(b *testing.B) { benchExperiment(b, "table6", benchOpts()) }

// BenchmarkTable7Prepin regenerates Table 7 (1- vs 16-page
// pre-pinning).
func BenchmarkTable7Prepin(b *testing.B) { benchExperiment(b, "table7", benchOpts()) }

// BenchmarkTable8Assoc regenerates Table 8 (size x associativity
// sweep).
func BenchmarkTable8Assoc(b *testing.B) { benchExperiment(b, "table8", benchOpts()) }

// BenchmarkFig7MissBreakdown regenerates Figure 7 (3C breakdown).
func BenchmarkFig7MissBreakdown(b *testing.B) { benchExperiment(b, "fig7", benchOpts()) }

// BenchmarkFig8Prefetch regenerates Figure 8 (prefetch sweep on
// Radix).
func BenchmarkFig8Prefetch(b *testing.B) {
	opts := benchOpts()
	opts.Apps = nil // fig8 is radix-only by construction
	benchExperiment(b, "fig8", opts)
}

// BenchmarkAblationPolicies sweeps the five replacement policies.
func BenchmarkAblationPolicies(b *testing.B) {
	opts := ExperimentOptions{Scale: 0.03, Seed: 7, Apps: []string{"water-spatial"}}
	benchExperiment(b, "ablation-policies", opts)
}

// BenchmarkAblationPerProcess compares per-process vs shared-cache
// UTLB designs.
func BenchmarkAblationPerProcess(b *testing.B) {
	opts := ExperimentOptions{Scale: 0.03, Seed: 7, Apps: []string{"water-spatial"}}
	benchExperiment(b, "ablation-perprocess", opts)
}

// --- Hot-path micro-benchmarks -------------------------------------

// BenchmarkSharedCacheLookupHit times the Shared UTLB-Cache hit path
// (the operation the paper charges 0.8 µs of simulated time).
func BenchmarkSharedCacheLookupHit(b *testing.B) {
	c := tlbcache.New(tlbcache.Config{Entries: 8192, Ways: 1, IndexOffset: true})
	key := tlbcache.Key{PID: 1, VPN: 42}
	c.Insert(key, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := c.Lookup(key); !r.Hit {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSharedCacheLookupMiss times the miss detection path.
func BenchmarkSharedCacheLookupMiss(b *testing.B) {
	c := tlbcache.New(tlbcache.Config{Entries: 8192, Ways: 4, IndexOffset: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(tlbcache.Key{PID: 2, VPN: units.VPN(i)})
	}
}

// BenchmarkBitVectorCheckHit times the user-level check fast path
// (simulated at 0.2 µs).
func BenchmarkBitVectorCheckHit(b *testing.B) {
	clk := units.NewClock()
	bv := core.NewBitVector(1<<16, hostos.DefaultCosts(), clk)
	bv.Set(0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bv.Check(0, 1) != nil {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkTranslateHit times the full NIC-side translation on a warm
// cache, including cost accounting.
func BenchmarkTranslateHit(b *testing.B) {
	host := hostos.New(0, 64*units.MB, hostos.DefaultCosts())
	clk := units.NewClock()
	ioBus := bus.New(host.Memory(), clk, bus.DefaultCosts())
	nic := nicsim.New(0, units.MB, clk, ioBus, nicsim.DefaultCosts())
	drv, err := core.NewDriver(host, nic, tlbcache.Config{Entries: 8192, Ways: 1, IndexOffset: true})
	if err != nil {
		b.Fatal(err)
	}
	proc, _ := host.Spawn(1, "bench", vm.NewSpace(1, host.Memory(), 0))
	lib, err := core.NewLib(drv, proc, core.LibConfig{Policy: core.LRU})
	if err != nil {
		b.Fatal(err)
	}
	if err := lib.Lookup(0, units.PageSize); err != nil {
		b.Fatal(err)
	}
	tr := core.NewTranslator(drv, 1)
	tr.Translate(1, 0) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, info := tr.Translate(1, 0); !info.Hit {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSimulateUTLB times the trace-driven simulator end to end
// (UTLB mechanism), reported per simulated lookup.
func BenchmarkSimulateUTLB(b *testing.B) {
	tr, err := GenerateTrace("water-spatial", 1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.CacheEntries = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateUTLBScratch is BenchmarkSimulateUTLB with
// caller-owned scratch (SimulateWith): the steady-state cost of one
// run when every reusable structure — cache storage, classifier,
// per-process library state, batch buffers — survives from the last
// run. The allocs/op of this benchmark is the number benchjson gates.
func BenchmarkSimulateUTLBScratch(b *testing.B) {
	tr, err := GenerateTrace("water-spatial", 1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.CacheEntries = 1024
	scr := NewSimScratch()
	if _, err := SimulateWith(tr, cfg, scr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateWith(tr, cfg, scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateBulkBatch runs the multi-page bulk-transfer
// workload through the batched translation path (8 pages per firmware
// dispatch). Batching changes simulated NIC time, not host wall-clock:
// this benchmark tracks that the batch path itself stays allocation-
// free and comparable in speed to the page-at-a-time loop.
func BenchmarkSimulateBulkBatch(b *testing.B) {
	tr := GenerateBulkTrace(0, 1, 1998, 0.25)
	cfg := DefaultSimConfig()
	cfg.BatchPages = 8
	scr := NewSimScratch()
	if _, err := SimulateWith(tr, cfg, scr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateWith(tr, cfg, scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateUTLBObserved is the recorder-enabled counterpart of
// BenchmarkSimulateUTLB: the delta between the two is the full cost of
// event recording (buffer appends; the exporters are not timed).
func BenchmarkSimulateUTLBObserved(b *testing.B) {
	tr, err := GenerateTrace("water-spatial", 1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.CacheEntries = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Recorder = NewEventBuffer("bench")
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateInterrupt is the baseline counterpart.
func BenchmarkSimulateInterrupt(b *testing.B) {
	tr, err := GenerateTrace("water-spatial", 1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.Mechanism = Interrupt
	cfg.CacheEntries = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMMCSendPage times one live one-page remote store through
// the full stack: UTLB lookup, firmware translation, DMA, reliable
// link, deposit.
func BenchmarkVMMCSendPage(b *testing.B) {
	cluster, err := NewCluster(ClusterOptions{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	sender, err := cluster.Node(0).NewProcess(1, "s", 0, LibConfig{Policy: LRU})
	if err != nil {
		b.Fatal(err)
	}
	receiver, err := cluster.Node(1).NewProcess(2, "r", 0, LibConfig{Policy: LRU})
	if err != nil {
		b.Fatal(err)
	}
	buf, err := receiver.Export(0x2000_0000, PageSize)
	if err != nil {
		b.Fatal(err)
	}
	imp, err := sender.Import(1, buf)
	if err != nil {
		b.Fatal(err)
	}
	if err := sender.Write(0x1000_0000, make([]byte, PageSize)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Send(imp, 0, 0x1000_0000, PageSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration times trace synthesis itself.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace("radix", int64(i), 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGen times one cold workload-trace generation per
// iteration (distinct seeds defeat the memoised trace store), the
// operation the store amortises across experiments.
func BenchmarkTraceGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace("water-spatial", int64(i+1), 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSequential regenerates the full experiment suite at
// worker-pool width 1 — the seed repo's strictly sequential path.
func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel is the same suite at GOMAXPROCS width; on a
// multi-core machine the wall-clock ratio to BenchmarkRunAllSequential
// is the experiment engine's speedup (the two outputs are
// byte-identical — see internal/experiments determinism tests).
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }

func benchRunAll(b *testing.B, width int) {
	b.Helper()
	SetParallelism(width)
	defer SetParallelism(0)
	opts := benchOpts()
	opts.Nodes = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunAllExperiments(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMultiprog mixes independent applications in the
// shared cache.
func BenchmarkAblationMultiprog(b *testing.B) {
	opts := ExperimentOptions{Scale: 0.05, Seed: 7, Apps: []string{"barnes", "water-spatial"}}
	benchExperiment(b, "ablation-multiprog", opts)
}

// BenchmarkSVMJacobi runs the Jacobi kernel over the SVM protocol on a
// live 4-node cluster (every fault and diff flush crosses the UTLB).
func BenchmarkSVMJacobi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSVM(SVMConfig{Peers: 4, RegionPages: 32})
		if err != nil {
			b.Fatal(err)
		}
		if err := RunJacobi(sys, 4096, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableSwapInOut cycles a second-level table through the
// paging path of section 3.3.
func BenchmarkTableSwapInOut(b *testing.B) {
	mem := phys.NewMemory(64 * units.PageSize)
	garbage, err := mem.Alloc()
	if err != nil {
		b.Fatal(err)
	}
	tbl := core.NewTable(1, mem, garbage)
	tbl.AttachDisk(core.NewDisk(core.DefaultDiskAccessTime))
	if err := tbl.Install(0, 5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.SwapOut(0, true); err != nil {
			b.Fatal(err)
		}
		if err := tbl.SwapIn(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplacementPolicies measures victim selection across the
// five policies at a realistic pinned-set size.
func BenchmarkReplacementPolicies(b *testing.B) {
	for _, kind := range []core.PolicyKind{core.LRU, core.MRU, core.LFU, core.MFU, core.Random} {
		b.Run(kind.String(), func(b *testing.B) {
			p := core.NewPolicy(kind, 1)
			for v := units.VPN(0); v < 2048; v++ {
				p.Insert(v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Touch(units.VPN(i % 2048))
				if i%64 == 0 {
					if v, ok := p.Victim(); ok {
						p.Remove(v)
						p.Insert(v)
					}
				}
			}
		})
	}
}

// BenchmarkSVMPipeline runs the live-kernel-to-simulator pipeline.
func BenchmarkSVMPipeline(b *testing.B) {
	benchExperiment(b, "svm-pipeline", ExperimentOptions{Scale: 0.05, Seed: 7})
}
